//! Regression tests for the parallel verification pipeline and the shared
//! verified-transaction cache.
//!
//! The invariant under test: across mempool admission → block proposal →
//! block import, each transaction signature pays for **exactly one**
//! elliptic-curve verification, observable through the
//! `chain.sigcache.{hit,miss}` telemetry counters. And verification
//! results are byte-identical for every worker-pool size.

use tn_chain::prelude::*;
use tn_chain::sigcache::{HIT_COUNTER, MISS_COUNTER};
use tn_core::platform::PlatformConfig;
use tn_crypto::Keypair;
use tn_node::validator::{encode_payloads, ValidatorNode};
use tn_par::Pool;
use tn_telemetry::Registry;

fn governor() -> Keypair {
    // Well-known bootstrap key (see tn-core::pipeline::bootstrap).
    Keypair::from_seed(b"tn-platform-governor")
}

fn transfer(nonce: u64, fee: u64) -> Transaction {
    Transaction::signed(
        &governor(),
        nonce,
        fee,
        Payload::Transfer {
            to: Keypair::from_seed(b"recipient").address(),
            amount: 1,
        },
    )
}

/// Mempool admission pre-warms the cache: K submitted transactions cost K
/// EC verifications total, then proposal and import are pure cache hits.
#[test]
fn one_ec_verify_per_tx_across_admission_proposal_import() {
    let config = PlatformConfig::default();
    let mut node = ValidatorNode::new(0, &config);
    const K: u64 = 8;
    // The bootstrap anchor consumed governor nonce 0.
    let txs: Vec<Transaction> = (1..=K).map(|n| transfer(n, config.fee)).collect();
    for tx in &txs {
        node.submit(tx.clone()).expect("admitted");
    }
    let snap = node.metrics_snapshot();
    assert_eq!(
        snap.counter(MISS_COUNTER),
        Some(K),
        "each admission verifies once"
    );
    assert_eq!(snap.counter(HIT_COUNTER), None, "no hits yet");

    let outcome = node
        .apply_committed_batch(&encode_payloads(&txs))
        .expect("commits");
    assert_eq!(outcome.included, K as usize);
    assert_eq!(outcome.failed, 0);

    let snap = node.metrics_snapshot();
    assert_eq!(
        snap.counter(MISS_COUNTER),
        Some(K),
        "proposal + import add zero EC verifications"
    );
    assert_eq!(
        snap.counter(HIT_COUNTER),
        Some(2 * K),
        "proposal and import are both served from the cache"
    );
}

/// Importing a block whose transactions are already cached performs zero
/// EC verifications: the hit counter advances by exactly the tx count.
#[test]
fn warm_cache_import_skips_ec_verification_entirely() {
    let alice = Keypair::from_seed(b"alice");
    let proposer = Keypair::from_seed(b"proposer");
    let registry = Registry::new();
    let mut store = ChainStore::new(State::genesis([(alice.address(), 10_000)]), &proposer);
    store.set_telemetry(registry.sink());

    const K: usize = 16;
    let txs: Vec<Transaction> = (0..K as u64)
        .map(|n| {
            Transaction::signed(
                &alice,
                n,
                1,
                Payload::Blob {
                    tag: 1,
                    data: vec![n as u8],
                },
            )
        })
        .collect();
    // Proposing warms the cache: K misses, zero hits.
    let block = store.propose(&proposer, 10, txs, &mut NoExecutor);
    let before = registry.snapshot();
    assert_eq!(before.counter(MISS_COUNTER), Some(K as u64));
    assert_eq!(before.counter(HIT_COUNTER), None);

    store.import(block, &mut NoExecutor).expect("imports");
    let after = registry.snapshot();
    assert_eq!(
        after.counter(MISS_COUNTER),
        Some(K as u64),
        "warm import must not re-verify any signature"
    );
    assert_eq!(
        after.counter(HIT_COUNTER),
        Some(K as u64),
        "hit count == tx count for the import"
    );
}

/// Replicas with different verification worker counts stay byte-identical:
/// the pool size is a throughput knob, never a consensus parameter.
#[test]
fn worker_count_does_not_change_execution() {
    let mk = |workers: usize| {
        let config = PlatformConfig {
            verify_workers: workers,
            ..PlatformConfig::default()
        };
        ValidatorNode::new(workers, &config)
    };
    let mut nodes = [mk(1), mk(2), mk(4)];
    let txs: Vec<Transaction> = (1..=6).map(|n| transfer(n, 1)).collect();
    let payloads = encode_payloads(&txs);
    for node in &mut nodes {
        node.apply_committed_batch(&payloads).expect("commits");
    }
    let digest = nodes[0].execution_digest();
    for node in &nodes {
        assert_eq!(node.execution_digest(), digest);
        node.verify_replay().expect("replay matches");
    }
}

/// The chain store accepts an explicit verification pool and produces the
/// same import results with it.
#[test]
fn explicit_pool_import_matches_sequential() {
    let alice = Keypair::from_seed(b"alice");
    let proposer = Keypair::from_seed(b"proposer");
    let build = |pool: Pool| {
        let mut store = ChainStore::new(State::genesis([(alice.address(), 10_000)]), &proposer);
        store.set_verify_pool(pool);
        let txs: Vec<Transaction> = (0..32u64)
            .map(|n| {
                Transaction::signed(
                    &alice,
                    n,
                    1,
                    Payload::Blob {
                        tag: 1,
                        data: vec![n as u8],
                    },
                )
            })
            .collect();
        let block = store.propose(&proposer, 10, txs, &mut NoExecutor);
        store.import(block, &mut NoExecutor).expect("imports");
        (store.head_id(), store.head_state().root())
    };
    let sequential = build(Pool::sequential());
    for workers in [2usize, 4, 8] {
        assert_eq!(build(Pool::new(workers)), sequential, "workers={workers}");
    }
}
