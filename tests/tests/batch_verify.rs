//! Property tests for batched Schnorr verification on the import path.
//!
//! The contract under test (E22): the batched random-linear-combination
//! signature check is a pure performance optimisation — for **every**
//! worker-pool size × batch chunk size, accept/reject verdicts, reported
//! errors and post-import replica state are byte-identical to the
//! sequential per-transaction scan, and the Fiat–Shamir coefficients that
//! seed each batch equation are a deterministic function of block
//! contents (so replicas with different parallelism derive identical
//! equations).

use proptest::prelude::*;

use tn_chain::block::BatchVerifyPolicy;
use tn_chain::prelude::*;
use tn_crypto::{batch_coefficients, BatchItem, Keypair};
use tn_par::Pool;
use tn_telemetry::TelemetrySink;
use tn_trace::TraceSink;

fn block_with_txs(count: usize, signers: usize) -> Block {
    let proposer = Keypair::from_seed(b"batch proposer");
    let keys: Vec<Keypair> = (0..signers.max(1))
        .map(|i| Keypair::from_seed(format!("batch signer {i}").as_bytes()))
        .collect();
    let txs: Vec<Transaction> = (0..count)
        .map(|i| {
            Transaction::signed(
                &keys[i % keys.len()],
                i as u64,
                1,
                Payload::Blob {
                    tag: 1,
                    data: vec![i as u8, (i >> 8) as u8],
                },
            )
        })
        .collect();
    Block::build(
        &proposer,
        1,
        tn_crypto::sha256::sha256(b"parent"),
        tn_crypto::sha256::sha256(b"state"),
        1000,
        txs,
    )
}

/// Re-roots and re-signs a block after its transactions were mutated, so
/// only the per-transaction signatures are invalid.
fn reseal(block: &mut Block) {
    block.header.tx_root = Block::compute_tx_root(&block.transactions);
    block.signature = Keypair::from_seed(b"batch proposer").sign(&block.header.digest());
}

fn verdict_with(
    block: &Block,
    workers: usize,
    policy: BatchVerifyPolicy,
) -> Result<(), ChainError> {
    block.verify_structure_policy(
        &Pool::new(workers),
        None,
        &TelemetrySink::disabled(),
        &TraceSink::disabled(),
        0,
        policy,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Valid blocks (any size, any signer diversity) are accepted by every
    /// pool × chunk configuration — batching never rejects a valid block.
    #[test]
    fn valid_blocks_accepted_at_every_configuration(
        count in 0usize..48,
        signers in 1usize..6,
        workers in 1usize..6,
        chunk in 1usize..64,
    ) {
        let block = block_with_txs(count, signers);
        prop_assert_eq!(block.verify_structure(), Ok(()));
        let policy = BatchVerifyPolicy { enabled: true, chunk };
        prop_assert_eq!(verdict_with(&block, workers, policy), Ok(()));
    }

    /// Corrupting any subset of signatures yields exactly the sequential
    /// scan's lowest-index error for every pool × chunk configuration —
    /// the batch fallback preserves first-error localization.
    #[test]
    fn corrupted_blocks_report_the_sequential_first_error(
        corrupt_raw in proptest::collection::vec(0usize..32, 1..5),
        workers in 1usize..6,
        chunk in 1usize..64,
    ) {
        let corrupt: std::collections::BTreeSet<usize> = corrupt_raw.into_iter().collect();
        let mut block = block_with_txs(32, 3);
        for (k, &idx) in corrupt.iter().enumerate() {
            if k % 2 == 0 {
                block.transactions[idx].fee ^= 1; // BadSignature
            } else {
                block.transactions[idx].from = Keypair::from_seed(b"eve").address(); // AddressMismatch
            }
        }
        reseal(&mut block);
        let seq = block.verify_structure();
        prop_assert!(seq.is_err());
        // The sequential verdict is the per-tx scan's first error.
        let first_bad = *corrupt.iter().min().unwrap();
        prop_assert_eq!(&seq, &block.transactions[first_bad].verify());
        let policy = BatchVerifyPolicy { enabled: true, chunk };
        prop_assert_eq!(&verdict_with(&block, workers, policy), &seq);
    }

    /// The Fiat–Shamir coefficients are a pure function of the batch
    /// contents and seed: recomputing them (as another replica would)
    /// gives bit-identical values, and any content change reroutes them.
    #[test]
    fn batch_coefficients_are_replica_deterministic(
        count in 1usize..24,
        signers in 1usize..4,
        seed in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let block = block_with_txs(count, signers);
        let items: Vec<BatchItem> = block
            .transactions
            .iter()
            .map(|tx| {
                let digest =
                    Transaction::signing_digest(&tx.from, tx.nonce, tx.fee, &tx.payload);
                (tx.pubkey, digest, tx.signature)
            })
            .collect();
        let here = batch_coefficients(&items, &seed);
        let replica = batch_coefficients(&items, &seed);
        prop_assert_eq!(&here, &replica);
        prop_assert_eq!(here.len(), items.len());
        // A different seed (e.g. another block id) must reroute them.
        let mut other_seed = seed.clone();
        other_seed.push(0x5a);
        prop_assert_ne!(&here, &batch_coefficients(&items, &other_seed));
    }
}

/// Full-store determinism: replicas importing the same blocks through any
/// batch policy × worker count end at identical head ids and state roots.
#[test]
fn replica_digests_identical_across_batch_configs() {
    let alice = Keypair::from_seed(b"alice");
    let proposer = Keypair::from_seed(b"proposer");
    let build = |workers: usize, policy: BatchVerifyPolicy| {
        let mut store = ChainStore::new(State::genesis([(alice.address(), 10_000)]), &proposer);
        store.set_verify_pool(Pool::new(workers));
        store.set_batch_policy(policy);
        let txs: Vec<Transaction> = (0..40u64)
            .map(|n| {
                Transaction::signed(
                    &alice,
                    n,
                    1,
                    Payload::Blob {
                        tag: 1,
                        data: vec![n as u8],
                    },
                )
            })
            .collect();
        let block = store.propose(&proposer, 10, txs, &mut NoExecutor);
        store.import(block, &mut NoExecutor).expect("imports");
        (store.head_id(), store.head_state().root())
    };
    let reference = build(1, BatchVerifyPolicy::disabled());
    for workers in [1usize, 2, 8] {
        for chunk in [1usize, 7, 512] {
            let policy = BatchVerifyPolicy {
                enabled: true,
                chunk,
            };
            assert_eq!(
                build(workers, policy),
                reference,
                "workers={workers} chunk={chunk}"
            );
        }
    }
}
