//! Fuzz-style property tests over every untrusted-input surface: decoding
//! arbitrary bytes and executing arbitrary bytecode must never panic —
//! they return errors. A public blockchain platform feeds attacker-
//! controlled bytes into all of these paths.

use proptest::prelude::*;

use tn_chain::block::Block;
use tn_chain::codec::{Decodable, Decoder};
use tn_chain::transaction::Transaction;
use tn_contracts::vm::{execute, validate, ExecEnv};
use tn_core::roles::IdentityRecord;
use tn_factdb::record::FactRecord;
use tn_supplychain::index::NewsEvent;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn transaction_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Transaction::from_bytes(&bytes);
    }

    #[test]
    fn block_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Block::from_bytes(&bytes);
    }

    #[test]
    fn news_event_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = NewsEvent::from_bytes(&bytes);
    }

    #[test]
    fn fact_record_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = FactRecord::from_bytes(&bytes);
    }

    #[test]
    fn identity_record_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = IdentityRecord::from_bytes(&bytes);
    }

    #[test]
    fn decoder_primitives_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut d = Decoder::new(&bytes);
        let _ = d.get_varint();
        let _ = d.get_bytes();
        let _ = d.get_str();
        let _ = d.get_hash();
        let _ = d.get_u64();
        let _ = d.get_bool();
    }

    #[test]
    fn vm_validate_never_panics(code in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = validate(&code);
    }

    #[test]
    fn vm_execute_validated_code_never_panics(
        code in proptest::collection::vec(0u8..=24, 0..128),
        input in proptest::collection::vec(any::<u64>(), 0..8),
    ) {
        // Arbitrary opcode soup: if it validates, it must execute without
        // panicking under a gas cap (returning Ok or a VmError).
        if validate(&code).is_ok() {
            let mut storage = std::collections::BTreeMap::new();
            let env = ExecEnv { caller: 7, input, gas_limit: 5_000 };
            let _ = execute(&code, &mut storage, &env);
        }
    }

    #[test]
    fn signed_tx_roundtrip_is_total(nonce in any::<u64>(), fee in any::<u64>(),
                                    data in proptest::collection::vec(any::<u8>(), 0..128)) {
        use tn_chain::codec::Encodable;
        use tn_chain::transaction::Payload;
        use tn_crypto::Keypair;
        let kp = Keypair::from_seed(b"fuzz roundtrip");
        let tx = Transaction::signed(&kp, nonce, fee, Payload::Blob { tag: 1, data });
        let decoded = Transaction::from_bytes(&tx.to_bytes()).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &tx);
        prop_assert!(decoded.verify().is_ok());
    }

    #[test]
    fn similarity_is_total_on_arbitrary_text(a in "\\PC{0,200}", b in "\\PC{0,200}") {
        let s = tn_supplychain::text::similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        let m = tn_supplychain::text::modification_degree(&a, &b);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&m));
    }

    #[test]
    fn lexicon_extraction_is_total(text in "\\PC{0,300}") {
        let f = tn_aidetect::lexicon::LexiconFeatures::extract(&text);
        let score = f.heuristic_score();
        prop_assert!((0.0..=1.0).contains(&score));
    }
}
