//! The live health plane, end to end: a monitored PBFT cluster under a
//! compound fault plan must (a) leave execution byte-identical to the
//! unmonitored run, (b) fire the expected alert classes on the expected
//! replicas with a deterministic, replayable timeline, and (c) expose
//! artifacts — Prometheus text, JSON dumps, the merged alert timeline —
//! that pass the exposition lint and parse as valid JSON.
//!
//! This is the operator's-eye counterpart of `replicated_platform.rs`:
//! that test proves the replicas *agree*; this one proves an observer
//! wired only to the telemetry plane can tell when they don't.

use tn_consensus::fault::{CrashFault, FaultPlan};
use tn_consensus::pbft::ByzMode;
use tn_monitor::{
    json_dump, lint_prometheus, prometheus_text, ClusterHealthVerdict, HealthState, MonitorConfig,
    Transition, RULE_CATCHUP, RULE_DIVERGENCE, RULE_RESTART, RULE_UNDECODABLE,
};
use tn_node::network::{run_pbft_cluster, ClusterConfig, ClusterRun};
use tn_node::workload::scripted_workload;

/// A compound plan the cluster can tolerate (f = 1 of n = 4): one
/// replica crashes and revives while corrupted payloads ride the
/// request stream. (Adding a corrupt-execution replica on top would
/// leave only 2 replicas on the digest — no quorum — which is the
/// `corrupt_exec_plan` scenario below.)
fn compound_plan() -> FaultPlan {
    FaultPlan {
        crashes: vec![CrashFault {
            replica: 2,
            at: 100,
            restart_at: Some(100_000),
        }],
        corrupt_payloads: 2,
        ..FaultPlan::default()
    }
}

/// One corrupt-execution replica, within f.
fn corrupt_exec_plan() -> FaultPlan {
    FaultPlan {
        byz_modes: vec![(3, ByzMode::CorruptExec)],
        ..FaultPlan::default()
    }
}

fn monitored_run(plan: FaultPlan) -> ClusterRun {
    let config = ClusterConfig {
        faults: plan,
        monitor: Some(MonitorConfig::default()),
        ..ClusterConfig::default()
    };
    let txs = scripted_workload(&config.platform);
    run_pbft_cluster(&config, &txs).expect("monitored cluster")
}

fn fired_rules(run: &ClusterRun, replica: usize) -> Vec<String> {
    run.nodes[replica]
        .monitor()
        .expect("monitor enabled")
        .engine()
        .timeline()
        .iter()
        .filter(|a| a.transition == Transition::Firing)
        .map(|a| a.rule.clone())
        .collect()
}

#[test]
fn compound_faults_fire_the_expected_alerts_per_replica() {
    let run = monitored_run(compound_plan());
    let health = run.health.as_ref().expect("rollup");

    // Replica 2 went through the real restart path: restart + catch-up
    // alerts, and the rollup must NOT quarantine it — it reconverged.
    assert_ne!(health.replicas[2], HealthState::Quarantined);
    let revived = fired_rules(&run, 2);
    assert!(revived.iter().any(|r| r == RULE_RESTART), "{revived:?}");
    assert!(revived.iter().any(|r| r == RULE_CATCHUP), "{revived:?}");

    // Corrupted payloads were ordered for everyone: the undecodable
    // alert fires on every replica that applied them live.
    for id in [0usize, 1, 3] {
        assert!(
            fired_rules(&run, id).iter().any(|r| r == RULE_UNDECODABLE),
            "undecodable alert missing on replica {id}"
        );
        assert_ne!(health.replicas[id], HealthState::Quarantined);
    }

    // Everything is within f: degraded while alerts fire, not critical.
    assert_eq!(health.verdict, ClusterHealthVerdict::Degraded);
}

#[test]
fn corrupt_execution_is_quarantined_by_the_digest_rollup() {
    let run = monitored_run(corrupt_exec_plan());
    let health = run.health.as_ref().expect("rollup");

    // The corrupt replica is quarantined with the divergence alert on
    // its own timeline; the honest majority stays healthy.
    assert_eq!(health.replicas[3], HealthState::Quarantined);
    assert!(fired_rules(&run, 3).iter().any(|r| r == RULE_DIVERGENCE));
    for id in 0..3 {
        assert_eq!(health.replicas[id], HealthState::Healthy);
    }
    assert_eq!(health.verdict, ClusterHealthVerdict::Degraded);
}

#[test]
fn monitoring_is_deterministic_and_side_effect_free() {
    let plan = compound_plan();
    let a = monitored_run(plan.clone());
    let b = monitored_run(plan);

    // Same plan, same workload: the alert timelines replay exactly.
    for id in 0..a.nodes.len() {
        let ta: Vec<_> = a.nodes[id]
            .monitor()
            .expect("monitor")
            .engine()
            .timeline()
            .iter()
            .map(|al| (al.rule.clone(), al.tick, al.transition))
            .collect();
        let tb: Vec<_> = b.nodes[id]
            .monitor()
            .expect("monitor")
            .engine()
            .timeline()
            .iter()
            .map(|al| (al.rule.clone(), al.tick, al.transition))
            .collect();
        assert_eq!(ta, tb, "replica {id} timeline must replay");
    }

    // And the monitored run matches the unmonitored one bit-for-bit.
    let unmonitored_config = ClusterConfig {
        faults: compound_plan(),
        ..ClusterConfig::default()
    };
    let txs = scripted_workload(&unmonitored_config.platform);
    let plain = run_pbft_cluster(&unmonitored_config, &txs).expect("unmonitored cluster");
    for (pa, pb) in plain.reports.iter().zip(&a.reports) {
        assert_eq!(pa.execution_digest, pb.execution_digest);
        assert_eq!(pa.projection_digests, pb.projection_digests);
    }
}

/// A strict JSON well-formedness scan (the vendored serde_json is
/// serialize-only): strings with escapes, balanced braces/brackets, and
/// nothing outside them. Rejects trailing garbage and unclosed nesting.
fn assert_well_formed_json(text: &str) {
    let mut depth: i64 = 0;
    let mut in_string = false;
    let mut escaped = false;
    let mut seen_any = false;
    for c in text.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => {
                depth += 1;
                seen_any = true;
            }
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced closer in {text:.80}");
            }
            _ => {
                assert!(
                    depth > 0 || c.is_whitespace(),
                    "token outside the document: {c:?}"
                );
            }
        }
    }
    assert!(
        seen_any && depth == 0 && !in_string,
        "unclosed JSON document"
    );
}

#[test]
fn exposition_artifacts_lint_and_are_well_formed() {
    let run = monitored_run(compound_plan());

    for node in &run.nodes {
        let monitor = node.monitor().expect("monitor enabled");
        // Prometheus text passes the line-format lint on every replica.
        let text = prometheus_text(monitor);
        lint_prometheus(&text).expect("prometheus lint");
        assert!(text.contains("tn_replica_health"));
        // The JSON dump is well-formed and carries the health state.
        let dump = json_dump(monitor);
        assert_well_formed_json(&dump);
        assert!(dump.contains(&format!("\"replica\":{}", node.id())));
        assert!(dump.contains(&format!("\"health\":\"{}\"", node.health().label())));
    }

    // The merged cluster timeline is well-formed and carries the rollup
    // verdict, every replica's state, and the compound plan's events.
    let timeline = run.health_timeline().expect("timeline artifact");
    assert_well_formed_json(&timeline);
    assert!(timeline.contains("\"verdict\":\"degraded\""));
    assert!(timeline.contains(tn_monitor::RULE_RESTART));
    assert!(
        timeline.contains("\"transition\":\"firing\""),
        "compound faults must leave events on the merged timeline"
    );
}
