//! The full stack, replicated: platform-style transactions (news events,
//! contract calls, anchors, VM deployments) are ordered by a PBFT cluster,
//! and each replica independently executes the committed batches against
//! its own chain store, contract registry and supply-chain index. Every
//! layer of state must agree bit-for-bit across replicas — the replicated
//! state machine the paper's "trust in machines" rests on.

use tn_chain::codec::{Decodable, Encodable};
use tn_chain::prelude::*;
use tn_consensus::pbft::{ByzMode, PbftConfig, PbftMsg, PbftReplica, Request};
use tn_consensus::sim::{NetworkConfig, Simulator};
use tn_contracts::asm::assemble;
use tn_contracts::builtin::{
    admission_attest, admission_register_checker, ranking_submit, FactDbAdmission, RankingContract,
};
use tn_contracts::executor::{contract_address, ContractRegistry};
use tn_crypto::{Hash256, Keypair};
use tn_supplychain::graph::SupplyChainGraph;
use tn_supplychain::index::{index_transaction, IndexStats, NewsEvent};
use tn_supplychain::ops::PropagationOp;

const FACT: &str = "The committee approved the solar subsidy amendment. \
    The vote passed with a clear majority. The minister welcomed the outcome.";

/// One replica's full state.
struct Replica {
    store: ChainStore,
    registry: ContractRegistry,
    graph: SupplyChainGraph,
    stats: IndexStats,
}

fn governor() -> Keypair {
    Keypair::from_seed(b"rp governor")
}

fn make_replica(fact_root: Hash256) -> Replica {
    let validator = Keypair::from_seed(b"rp validator");
    let journalist = Keypair::from_seed(b"rp journalist");
    let rater = Keypair::from_seed(b"rp rater");
    let genesis = State::genesis([
        (governor().address(), 1_000_000),
        (journalist.address(), 100_000),
        (rater.address(), 100_000),
    ]);
    let store = ChainStore::new(genesis, &validator);
    let mut registry = ContractRegistry::new();
    registry.install_builtin(Box::new(RankingContract::new(governor().address())));
    registry.install_builtin(Box::new(FactDbAdmission::new(governor().address(), 1)));
    let mut graph = SupplyChainGraph::new();
    graph
        .add_fact_root(fact_root, FACT, "energy", 0)
        .expect("unique");
    Replica {
        store,
        registry,
        graph,
        stats: IndexStats::default(),
    }
}

/// Builds the workload: a realistic mix of platform transactions.
fn build_workload(fact_root: Hash256) -> Vec<Transaction> {
    let gov = governor();
    let journalist = Keypair::from_seed(b"rp journalist");
    let rater = Keypair::from_seed(b"rp rater");
    let ranking = tn_contracts::executor::builtin_address("ranking");
    let admission = tn_contracts::executor::builtin_address("factdb-admission");

    let mut txs = Vec::new();
    let mut jn = 0u64;
    let mut rn = 0u64;
    let mut gn = 0u64;

    // Governor registers the rater as a fact checker and deploys a VM
    // counter contract.
    txs.push(Transaction::signed(
        &gov,
        gn,
        1,
        Payload::ContractCall {
            contract: admission,
            input: admission_register_checker(&rater.address()),
            gas_limit: 10_000,
        },
    ));
    gn += 1;
    let counter_code =
        assemble("push 0\npush 0\nsload\npush 1\nadd\nsstore\npush 0\nsload\npush 1\nret")
            .expect("assembles");
    txs.push(Transaction::signed(
        &gov,
        gn,
        1,
        Payload::ContractDeploy { code: counter_code },
    ));
    let vm_contract = contract_address(&gov.address(), gn);
    gn += 1;

    // Journalist publishes a chain of stories; rater rates each and calls
    // the VM contract; checker attests a record.
    let mut prev: Option<Hash256> = None;
    #[allow(clippy::explicit_counter_loop)] // jn/rn are account nonces, not loop counters
    for i in 0..6u64 {
        let content = if i == 0 {
            FACT.to_string()
        } else {
            format!("{FACT} Follow-up number {i}.")
        };
        let parents = match prev {
            None => vec![(fact_root, PropagationOp::Cite.tag())],
            Some(p) => vec![(p, PropagationOp::Insert.tag())],
        };
        let published_at = 100 + i;
        let item_id = tn_supplychain::graph::item_id(&journalist.address(), &content, published_at);
        let event = NewsEvent {
            headline: String::new(),
            content,
            topic: "energy".into(),
            room: 1,
            parents,
            published_at,
        };
        txs.push(Transaction::signed(
            &journalist,
            jn,
            1,
            event.into_payload(),
        ));
        jn += 1;

        txs.push(Transaction::signed(
            &rater,
            rn,
            1,
            Payload::ContractCall {
                contract: ranking,
                input: ranking_submit(&item_id, 60 + (i as u8) * 5),
                gas_limit: 10_000,
            },
        ));
        rn += 1;
        txs.push(Transaction::signed(
            &rater,
            rn,
            1,
            Payload::ContractCall {
                contract: vm_contract,
                input: vec![],
                gas_limit: 10_000,
            },
        ));
        rn += 1;
        txs.push(Transaction::signed(
            &rater,
            rn,
            1,
            Payload::ContractCall {
                contract: admission,
                input: admission_attest(&item_id),
                gas_limit: 10_000,
            },
        ));
        rn += 1;
        prev = Some(item_id);
    }
    // Governor anchors the (simulated) factual-DB root.
    txs.push(Transaction::signed(
        &gov,
        gn,
        1,
        Payload::AnchorRoot {
            namespace: "factdb".into(),
            root: fact_root,
        },
    ));
    txs
}

#[test]
fn all_layers_agree_across_pbft_replicas() {
    let fact_root = tn_crypto::sha256::sha256(b"rp fact root");
    let txs = build_workload(fact_root);
    let n_txs = txs.len();

    // Order through PBFT.
    const N: usize = 4;
    let nodes: Vec<PbftReplica> = (0..N)
        .map(|id| PbftReplica::new(id, N, PbftConfig::default(), ByzMode::Honest))
        .collect();
    let mut sim = Simulator::new(nodes, NetworkConfig::default());
    for (i, tx) in txs.iter().enumerate() {
        let req = Request::new(tx.to_bytes(), 10 + i as u64 * 3);
        // Inject at one node so per-account nonce order survives arrival.
        sim.inject_at(0, PbftMsg::Request(req), 10 + i as u64 * 3);
    }
    sim.run_until(2_000_000);

    // Each replica executes its committed sequence.
    let validator = Keypair::from_seed(b"rp validator");
    let mut snapshots = Vec::new();
    for id in 0..N {
        let mut replica = make_replica(fact_root);
        let mut executed = 0usize;
        for entry in &sim.node(id).committed {
            let batch: Vec<Transaction> = entry
                .requests
                .iter()
                .map(|r| Transaction::from_bytes(&r.payload).expect("valid tx bytes"))
                .collect();
            executed += batch.len();
            // Block timestamps must be a deterministic function of the
            // agreed sequence (NOT local commit time, which differs per
            // replica) or block ids would diverge.
            let block = replica
                .store
                .propose(&validator, entry.seq, batch, &mut NoExecutor);
            let block_txs = block.transactions.clone();
            replica
                .store
                .import(block, &mut replica.registry)
                .expect("imports");
            for tx in &block_txs {
                index_transaction(tx, &mut replica.graph, &mut replica.stats);
            }
        }
        assert_eq!(executed, n_txs, "replica {id} executed everything");
        snapshots.push(replica);
    }

    // Layer-by-layer agreement.
    let reference = &snapshots[0];
    assert!(reference.stats.indexed >= 6, "news events indexed");
    for (id, r) in snapshots.iter().enumerate().skip(1) {
        // Chain layer.
        assert_eq!(
            r.store.head_id(),
            reference.store.head_id(),
            "replica {id} head"
        );
        assert_eq!(
            r.store.head_state().root(),
            reference.store.head_state().root(),
            "replica {id} state root"
        );
        // VM contract storage.
        assert_eq!(
            r.registry.storage_root(),
            reference.registry.storage_root(),
            "replica {id} contract storage"
        );
        // Supply-chain index.
        assert_eq!(
            r.graph.len(),
            reference.graph.len(),
            "replica {id} graph size"
        );
        for item in reference.graph.iter() {
            let other = r.graph.get(&item.id).expect("item replicated");
            assert_eq!(other.parents, item.parents, "replica {id} edges");
        }
        // Trace results agree.
        let t_ref: Vec<_> = reference.graph.trace_all();
        let t_other: Vec<_> = r.graph.trace_all();
        assert_eq!(t_ref.len(), t_other.len());
        for ((ia, ta), (ib, tb)) in t_ref.iter().zip(&t_other) {
            assert_eq!(ia, ib);
            assert!(
                (ta.score - tb.score).abs() < 1e-12,
                "replica {id} trace score"
            );
        }
    }

    // The replicated ranking contract agrees on crowd scores.
    let last_item = reference
        .graph
        .iter()
        .filter(|i| !i.is_fact_root)
        .last()
        .expect("items")
        .id;
    let rank_addr = tn_contracts::executor::builtin_address("ranking");
    let counts: Vec<(u64, u64)> = snapshots
        .iter()
        .map(|r| {
            r.registry
                .builtin(&rank_addr)
                .and_then(|b| b.as_any().downcast_ref::<RankingContract>())
                .expect("installed")
                .ranking(&last_item)
        })
        .collect();
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "crowd rankings agree: {counts:?}"
    );
    assert_eq!(counts[0].0, 1, "one rating per item");
}
