//! Durable-storage integration: backend equivalence and crash safety.
//!
//! Two guarantees the storage engine must deliver end to end:
//!
//! 1. **Backend transparency** — a replica on the disk backend is
//!    observably identical to one on the in-memory backend: same head
//!    ids, execution digests, projection digests, per-height blocks,
//!    states, receipts, and tx/account index answers.
//! 2. **Torn-write safety** — after a crash that tears the WAL tail,
//!    flips bits mid-WAL, or damages a sealed segment, reopening
//!    recovers a verified *prefix* of the chain whose execution digest
//!    matches a never-crashed replica at the same height — never a
//!    corrupted or diverged state.

use std::fs::OpenOptions;
use std::path::PathBuf;

use tn_chain::codec::Encodable;
use tn_core::platform::PlatformConfig;
use tn_node::validator::ValidatorNode;
use tn_node::workload::scripted_workload;
use tn_storage::BackendKind;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("tn-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A tight storage config: small retention window so eviction and
/// finalization actually run, frequent checkpoints, per-append fsync so
/// "what was acknowledged" is unambiguous in crash tests.
fn tight_storage(config: &mut PlatformConfig) {
    config.storage.retention = 4;
    config.storage.checkpoint_interval = 4;
    config.storage.segment_blocks = 4;
    config.storage.fsync_interval = 1;
}

/// Real platform traffic (identities, newsrooms, sourced news, ratings,
/// a fact admission) chunked into consensus-sized batches.
fn workload_batches() -> Vec<Vec<Vec<u8>>> {
    scripted_workload(&PlatformConfig::default())
        .chunks(3)
        .map(|txs| txs.iter().map(|tx| tx.to_bytes()).collect())
        .collect()
}

#[test]
fn mem_and_disk_backends_are_observably_identical() {
    let tmp = TempDir::new("equiv");
    let mut mem_cfg = PlatformConfig::default();
    tight_storage(&mut mem_cfg);
    let mut disk_cfg = mem_cfg.clone();
    disk_cfg.storage.backend = BackendKind::Disk(tmp.0.clone());

    let mut mem = ValidatorNode::new(0, &mem_cfg);
    let mut disk = ValidatorNode::new(1, &disk_cfg);
    for batch in workload_batches() {
        let a = mem.apply_committed_batch(&batch).expect("mem batch");
        let b = disk.apply_committed_batch(&batch).expect("disk batch");
        assert_eq!(a, b, "batch outcomes diverge at height {}", a.height);
        assert_eq!(mem.head_id(), disk.head_id());
        assert_eq!(mem.execution_digest(), disk.execution_digest());
        assert_eq!(mem.projection_digests(), disk.projection_digests());
    }
    assert!(
        mem.height() > mem_cfg.storage.retention + 2,
        "the workload must outgrow the retention window for this test to bite"
    );

    // Every height — including those evicted from the in-memory window —
    // answers identically from both backends.
    let ms = mem.pipeline().store();
    let ds = disk.pipeline().store();
    let mut ids = ms.canonical_chain();
    ids.reverse(); // genesis first
    for (h, id) in ids.iter().enumerate() {
        let mb = ms.block(id).expect("mem serves every canonical block");
        let db = ds.block(id).expect("disk serves every canonical block");
        assert_eq!(mb.header.height, h as u64);
        assert_eq!(mb.id(), db.id(), "height {h}");
        assert_eq!(
            ms.state_of(id).expect("mem state").root(),
            ds.state_of(id).expect("disk state").root(),
            "state root at height {h}"
        );
        assert_eq!(
            ms.receipts_of(id).expect("mem receipts"),
            ds.receipts_of(id).expect("disk receipts"),
            "receipts at height {h}"
        );
        for tx in &mb.transactions {
            let tid = tx.id();
            assert_eq!(ms.tx_location(&tid), ds.tx_location(&tid), "tx {tid}");
            assert_eq!(
                ms.account_txs(&tx.from),
                ds.account_txs(&tx.from),
                "account index for sender of {tid}"
            );
        }
    }
}

/// Crashes a disk-backed node after `batches` deterministic one-tx
/// batches and returns (storage dir config, batches, height at crash).
fn crashed_node(tmp: &TempDir, n: u8) -> (PlatformConfig, Vec<Vec<Vec<u8>>>, u64) {
    let mut config = PlatformConfig::default();
    tight_storage(&mut config);
    config.storage.backend = BackendKind::Disk(tmp.0.clone());
    let batches: Vec<Vec<Vec<u8>>> = (0..n).map(|i| vec![vec![i, 0x5a, 0xa5]]).collect();
    let mut node = ValidatorNode::new(0, &config);
    for b in &batches {
        node.apply_committed_batch(b).expect("batch");
    }
    let height = node.height();
    drop(node); // crash: no shutdown checkpoint
    (config, batches, height)
}

/// Asserts that reopening from `config` yields a replica whose state is
/// byte-equivalent to a never-crashed in-memory replica advanced by the
/// same batch prefix, then returns the recovered height.
fn assert_recovers_to_matching_prefix(
    config: &PlatformConfig,
    batches: &[Vec<Vec<u8>>],
    max_height: u64,
) -> u64 {
    let (recovered, _replayed) = ValidatorNode::reopen(0, config).expect("reopen");
    let height = recovered.height();
    assert!(height <= max_height);
    // The recovered chain must be an honest prefix: a fresh replica fed
    // the same first `height - 1` batches reports the same digest
    // (height 1 is the bootstrap anchor, so batch i lands at height i+2).
    let mut witness = ValidatorNode::new(9, &PlatformConfig::default());
    for b in &batches[..(height - 1) as usize] {
        witness.apply_committed_batch(b).expect("witness batch");
    }
    assert_eq!(
        recovered.execution_digest(),
        witness.execution_digest(),
        "recovered replica diverged from the never-crashed prefix at height {height}"
    );
    recovered
        .verify_replay()
        .expect("replay audit passes after recovery");
    height
}

#[test]
fn truncated_wal_tail_recovers_the_durable_prefix() {
    let tmp = TempDir::new("torn-tail");
    let (config, batches, crash_height) = crashed_node(&tmp, 9);
    // Tear the last WAL frame mid-write.
    let wal = tmp.0.join("wal.log");
    let len = std::fs::metadata(&wal).expect("wal exists").len();
    OpenOptions::new()
        .write(true)
        .open(&wal)
        .expect("open wal")
        .set_len(len - 7)
        .expect("truncate");
    let height = assert_recovers_to_matching_prefix(&config, &batches, crash_height - 1);
    assert!(height >= 1, "at minimum the genesis prefix survives");
}

#[test]
fn bit_flipped_wal_frame_recovers_the_prefix_before_it() {
    let tmp = TempDir::new("bit-flip");
    let (config, batches, crash_height) = crashed_node(&tmp, 9);
    // Flip one byte ~60% into the WAL: the CRC framing must stop the
    // scan there, and recovery must fall back to a checkpoint at or
    // below the surviving prefix.
    let wal = tmp.0.join("wal.log");
    let mut data = std::fs::read(&wal).expect("read wal");
    let at = data.len() * 3 / 5;
    data[at] ^= 0xff;
    std::fs::write(&wal, &data).expect("write wal");
    let height = assert_recovers_to_matching_prefix(&config, &batches, crash_height - 1);
    assert!(height >= 1);
}

#[test]
fn damaged_sealed_segment_is_detected_on_read_not_served() {
    let tmp = TempDir::new("bad-segment");
    // Enough blocks that several segments seal (retention 4, segment 4):
    // 14 batches -> height 15, finalized to 11, segments 0-3, 4-7, 8-11.
    let (config, batches, crash_height) = crashed_node(&tmp, 14);
    let seg = tmp.0.join("segments").join("seg-0000000008.seg");
    let mut data = std::fs::read(&seg).expect("sealed segment exists");
    let at = data.len() / 2;
    data[at] ^= 0xff;
    std::fs::write(&seg, &data).expect("write segment");

    // Recovery is checkpoint + WAL tail by design — it never re-reads
    // sealed history, so it still reaches the full height with the
    // correct state (the newest checkpoint postdates the damage).
    let (recovered, replayed) = ValidatorNode::reopen(0, &config).expect("reopen");
    assert_eq!(recovered.height(), crash_height);
    assert!(replayed <= config.storage.checkpoint_interval);
    let mut witness = ValidatorNode::new(9, &PlatformConfig::default());
    for b in &batches {
        witness.apply_committed_batch(b).expect("witness batch");
    }
    assert_eq!(recovered.execution_digest(), witness.execution_digest());

    // But the damaged range is never *served*: the CRC-framed segment
    // read fails closed, so the query answers None instead of returning
    // corrupt bytes. Exactly one frame was hit; its neighbors survive.
    let store = recovered.pipeline().store();
    let mut ids = store.canonical_chain();
    ids.reverse(); // genesis first
    let unreadable: Vec<u64> = (8..=11)
        .filter(|&h| store.block(&ids[h as usize]).is_none())
        .collect();
    assert_eq!(
        unreadable.len(),
        1,
        "one flipped byte must poison exactly one framed record, got {unreadable:?}"
    );
    for h in [7u64, 12] {
        assert!(
            store.block(&ids[h as usize]).is_some(),
            "height {h} outside the damaged segment must still be served"
        );
    }
}
