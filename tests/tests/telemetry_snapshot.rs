//! Telemetry integration: a 4-validator cluster run must leave a coherent
//! metrics trail on every replica.
//!
//! The telemetry layer is observational only — the cluster's execution
//! digests must agree whether or not anyone reads the registries — but
//! the registries themselves must tell a consistent story: every replica
//! imported blocks, every replica participated in consensus rounds, and
//! any two replicas agree on how many batches were committed.

use tn_node::network::{run_pbft_cluster, run_poa_cluster, ClusterConfig};
use tn_node::workload::scripted_workload;

#[test]
fn four_validator_run_populates_every_replica_registry() {
    let config = ClusterConfig::default();
    assert_eq!(config.n_validators, 4);
    let txs = scripted_workload(&config.platform);
    let run = run_pbft_cluster(&config, &txs).expect("pbft cluster");
    assert!(run.is_consistent(), "replicas diverged");
    assert_eq!(run.reports.len(), 4);

    for report in &run.reports {
        let m = &report.metrics;
        // Block-import counters are non-zero and match the chain height
        // above the bootstrap anchor.
        let imported = m.counter("chain.blocks_imported").unwrap_or(0);
        assert!(imported > 0, "replica {} imported no blocks", report.id);
        assert_eq!(imported, report.height - 1, "replica {}", report.id);

        // Consensus-round counters are non-zero on every replica: each
        // one committed and executed PBFT batches.
        let rounds = m.counter("pbft.batches_committed").unwrap_or(0);
        assert!(rounds > 0, "replica {} saw no pbft rounds", report.id);
        assert_eq!(m.counter("pbft.batches_executed"), Some(rounds));

        // Phase histograms recorded one sample per committed batch.
        let prepare = m.histogram("pbft.prepare_phase_ticks").expect("prepare");
        let commit = m.histogram("pbft.commit_phase_ticks").expect("commit");
        assert_eq!(prepare.count, rounds);
        assert_eq!(commit.count, rounds);
        assert!(prepare.max >= prepare.min);

        // Mempool admission ran on the client-ingest path.
        assert!(m.counter("mempool.admitted").unwrap_or(0) > 0);
    }

    // Any two replicas agree on the committed-block count: consensus gave
    // them the same batch sequence, so the counters must match exactly.
    let a = &run.reports[0].metrics;
    let b = &run.reports[1].metrics;
    assert_eq!(
        a.counter("pbft.batches_committed"),
        b.counter("pbft.batches_committed")
    );
    assert_eq!(
        a.counter("chain.blocks_imported"),
        b.counter("chain.blocks_imported")
    );
    assert_eq!(
        a.counter("contracts.gas_total"),
        b.counter("contracts.gas_total")
    );
}

#[test]
fn poa_run_populates_slot_counters() {
    let config = ClusterConfig::default();
    let txs = scripted_workload(&config.platform);
    let run = run_poa_cluster(&config, &txs).expect("poa cluster");
    assert!(run.is_consistent());
    for report in &run.reports {
        let m = &report.metrics;
        assert!(m.counter("chain.blocks_imported").unwrap_or(0) > 0);
        assert!(
            m.counter("poa.slots_committed").unwrap_or(0) > 0,
            "replica {} saw no poa slots",
            report.id
        );
    }
    // Slot counts agree across replicas.
    let first = run.reports[0].metrics.counter("poa.slots_committed");
    for report in &run.reports[1..] {
        assert_eq!(report.metrics.counter("poa.slots_committed"), first);
    }
}

#[test]
fn snapshot_json_round_trips_key_metrics() {
    let config = ClusterConfig::default();
    let txs = scripted_workload(&config.platform);
    let run = run_pbft_cluster(&config, &txs).expect("pbft cluster");
    let json = run.reports[0].metrics.to_json();
    // The hand-rolled JSON must contain the headline metrics and parse
    // under serde_json's strict grammar (via the vendored test dep).
    for key in [
        "chain.blocks_imported",
        "pbft.batches_committed",
        "pbft.prepare_phase_ticks",
        "mempool.admitted",
    ] {
        assert!(json.contains(key), "json missing {key}");
    }
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
}
