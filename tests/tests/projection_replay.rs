//! Replay determinism: projections are pure functions of chain history.
//!
//! Covers the layered-pipeline guarantees end to end: a multi-block live
//! platform session replays from genesis into byte-identical projection
//! digests, a restored chain rebuilds the same projections, and a
//! 4-validator PBFT network derives the same digests on every replica.

use tn_core::platform::{Platform, PlatformConfig};
use tn_core::roles::Role;
use tn_crypto::Keypair;
use tn_factdb::record::{FactRecord, SourceKind};
use tn_node::network::{run_pbft_cluster, ClusterConfig};
use tn_node::workload::scripted_workload;
use tn_supplychain::ops::PropagationOp;

/// Drives a platform through a multi-block session touching all four
/// projections: identities, newsroom setup, sourced + unsourced news,
/// a headline, ratings, and a fact admission with its re-anchor.
fn busy_platform() -> Platform {
    let mut p = Platform::new(PlatformConfig::default());
    let publisher = Keypair::from_seed(b"pr-publisher");
    let journo = Keypair::from_seed(b"pr-journalist");
    let c1 = Keypair::from_seed(b"pr-checker-1");
    let c2 = Keypair::from_seed(b"pr-checker-2");

    p.register_identity(&publisher, "PR Press", &[Role::Publisher])
        .unwrap();
    p.register_identity(
        &journo,
        "PR Journalist",
        &[Role::ContentCreator, Role::Consumer],
    )
    .unwrap();
    p.register_identity(&c1, "PR Checker 1", &[Role::FactChecker])
        .unwrap();
    p.register_identity(&c2, "PR Checker 2", &[Role::FactChecker])
        .unwrap();
    p.produce_block().unwrap();

    p.create_publisher_platform(&publisher, "PR Press").unwrap();
    p.produce_block().unwrap();
    let pid = p.newsrooms().find_platform("PR Press").unwrap();
    p.create_news_room(&publisher, pid, "general").unwrap();
    p.produce_block().unwrap();
    let room = p.newsrooms().rooms().next().unwrap().0;
    p.authorize_journalist(&publisher, room, &journo.address())
        .unwrap();
    p.produce_block().unwrap();

    let root = p.factdb().iter().next().unwrap().clone();
    let cited = p
        .publish_news(
            &journo,
            room,
            &root.topic,
            &root.content,
            vec![(root.id(), PropagationOp::Cite)],
        )
        .unwrap();
    p.publish_news_with_headline(
        &journo,
        room,
        "general",
        "Board certifies audit",
        "The board certified the audit.",
        vec![],
    )
    .unwrap();
    p.produce_block().unwrap();
    p.submit_rating(&journo, &cited, 90).unwrap();
    p.produce_block().unwrap();

    let record = FactRecord {
        source: SourceKind::VerifiedNews,
        speaker: "PR Recorder".into(),
        topic: "general".into(),
        content: "The replay audit committee approved the procedure.".into(),
        recorded_at: 512,
    };
    let id = p.propose_fact(record).unwrap();
    p.attest_fact(&c1, &id).unwrap();
    p.attest_fact(&c2, &id).unwrap();
    let summary = p.produce_block().unwrap();
    assert_eq!(
        summary.admitted_facts,
        vec![id],
        "fact must admit at threshold"
    );
    p.produce_block().unwrap(); // flush the automatic re-anchor
    p
}

#[test]
fn live_platform_replays_to_identical_digests() {
    let p = busy_platform();
    assert!(
        p.height() >= 8,
        "multi-block history expected, got {}",
        p.height()
    );

    let live = p.projection_digests();
    assert_eq!(live.len(), 4);
    let names: Vec<&str> = live.iter().map(|(n, _)| *n).collect();
    assert_eq!(names, ["supplychain", "identity", "factdb", "headlines"]);

    let replayed = p
        .verify_replay()
        .expect("replay must match live projections");
    assert_eq!(replayed, live);
}

#[test]
fn restored_pipeline_rebuilds_identical_projections() {
    // Snapshot the live chain and restore it into a brand-new pipeline:
    // blocks are re-executed against a fresh contract registry and the
    // projections replayed from genesis. Everything derived — contract
    // storage, projection digests, the whole execution digest — must
    // equal the live platform's.
    let p = busy_platform();
    let config = PlatformConfig::default();
    let snapshot = p.store().snapshot();
    let governor = p.governor_address();
    let seed: Vec<FactRecord> = tn_factdb::corpus::generate_corpus(&config.factdb_seed)
        .into_iter()
        .collect();
    let restored = tn_core::pipeline::ExecutionPipeline::restore(
        &snapshot,
        governor,
        config.fact_threshold,
        seed,
    )
    .expect("restore");

    assert_eq!(restored.store().head_id(), p.store().head_id());
    assert_eq!(restored.projection_digests(), p.projection_digests());
    assert_eq!(restored.execution_digest(), p.execution_digest());
    restored
        .verify_replay()
        .expect("restored pipeline passes the replay audit");
}

#[test]
fn four_replica_pbft_network_agrees_on_all_digests() {
    let config = ClusterConfig::default();
    assert_eq!(config.n_validators, 4);
    let txs = scripted_workload(&config.platform);
    let run = run_pbft_cluster(&config, &txs).expect("cluster run");

    let agreed = run
        .agreed_digest()
        .expect("replicas must agree on the execution digest");
    for report in &run.reports {
        assert_eq!(
            report.execution_digest, agreed,
            "replica {} diverged",
            report.id
        );
        assert_eq!(
            report.projection_digests, run.reports[0].projection_digests,
            "replica {} projection digests diverged",
            report.id
        );
        assert!(
            report.included > 0,
            "replica {} applied no transactions",
            report.id
        );
    }
    // And each replica independently passes the ledger-replay audit.
    for node in &run.nodes {
        node.verify_replay().expect("replica replay audit");
    }
    // The workload's fact admission happened on-chain, consistently.
    let db = run.nodes[0].pipeline().factdb();
    assert!(db.len() > 50, "admitted fact must extend the seeded corpus");
}
