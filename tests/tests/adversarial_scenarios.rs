//! Adversarial integration scenarios: coordinated attacks against
//! multiple platform mechanisms at once.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tn_aidetect::corpus::{generate_news_corpus, NewsCorpusConfig};
use tn_core::platform::{Platform, PlatformConfig};
use tn_core::roles::Role;
use tn_crowdrank::aggregate::{majority, reputation_weighted, Vote};
use tn_crowdrank::reputation::ReputationLedger;
use tn_crypto::{Hash256, Keypair};
use tn_supplychain::ops::{apply, PropagationOp};

/// A smear campaign: a bloc of rogue raters downvotes a well-sourced
/// story while honest readers upvote it. With reputation earned from
/// confirmed history, the bloc loses; with naive majority, it wins.
#[test]
fn smear_campaign_defeated_by_reputation_not_majority() {
    let story: Hash256 = tn_crypto::sha256::sha256(b"well sourced story");
    let honest: Vec<Keypair> = (0..4)
        .map(|i| Keypair::from_seed(format!("sm honest {i}").as_bytes()))
        .collect();
    let bloc: Vec<Keypair> = (0..6)
        .map(|i| Keypair::from_seed(format!("sm bloc {i}").as_bytes()))
        .collect();

    // History: honest raters were right on 10 confirmed items, the bloc
    // wrong on 10 (their past smears were exposed by fact checkers).
    let mut ledger = ReputationLedger::new();
    for _ in 0..10 {
        for h in &honest {
            ledger.record(&h.address(), true);
        }
        for b in &bloc {
            ledger.record(&b.address(), false);
        }
    }

    let mut votes = Vec::new();
    for h in &honest {
        votes.push(Vote {
            voter: h.address(),
            item: story,
            factual: true,
        });
    }
    for b in &bloc {
        votes.push(Vote {
            voter: b.address(),
            item: story,
            factual: false,
        });
    }

    let by_majority = &majority(&votes)[0];
    let by_reputation = &reputation_weighted(&votes, &ledger)[0];
    assert!(
        !by_majority.factual,
        "the 6-vs-4 bloc wins a naive majority"
    );
    assert!(
        by_reputation.factual,
        "reputation weighting resists the bloc"
    );
}

/// A laundering chain: a fabricated story is relayed through many honest-
/// looking accounts. Trace-back still reports no factual root, and the
/// fabricator remains identifiable from the ledger.
#[test]
fn laundering_chain_cannot_fake_provenance() {
    let mut platform = Platform::new(PlatformConfig::default());
    let publisher = Keypair::from_seed(b"lc publisher");
    platform
        .register_identity(&publisher, "LC Press", &[Role::Publisher])
        .unwrap();
    let relayers: Vec<Keypair> = (0..6)
        .map(|i| Keypair::from_seed(format!("lc relay {i}").as_bytes()))
        .collect();
    let fabricator = Keypair::from_seed(b"lc fabricator");
    platform
        .register_identity(&fabricator, "Fabricator", &[Role::ContentCreator])
        .unwrap();
    for (i, r) in relayers.iter().enumerate() {
        platform
            .register_identity(r, &format!("Relayer {i}"), &[Role::ContentCreator])
            .unwrap();
    }
    platform.produce_block().expect("identities");
    platform
        .create_publisher_platform(&publisher, "LC Press")
        .expect("platform");
    platform.produce_block().expect("block");
    let pid = platform
        .newsrooms()
        .find_platform("LC Press")
        .expect("registered");
    platform
        .create_news_room(&publisher, pid, "politics")
        .expect("room");
    platform.produce_block().expect("block");
    let room = platform.newsrooms().rooms().next().expect("room").0;
    platform
        .authorize_journalist(&publisher, room, &fabricator.address())
        .expect("authz");
    for r in &relayers {
        platform
            .authorize_journalist(&publisher, room, &r.address())
            .expect("authz");
    }
    platform.produce_block().expect("block");

    let fabricated = "Leaked dossier proves the vote was rigged by insiders. \
                      Share before deletion.";
    let mut prev = platform
        .publish_news(&fabricator, room, "politics", fabricated, vec![])
        .expect("fabricate");
    platform.produce_block().expect("block");
    for r in &relayers {
        prev = platform
            .publish_news(
                r,
                room,
                "politics",
                fabricated,
                vec![(prev, PropagationOp::Relay)],
            )
            .expect("relay");
        platform.produce_block().expect("block");
    }

    // Six hops of laundering change nothing: no factual root.
    let trace = platform.trace_item(&prev).expect("trace");
    assert!(!trace.reaches_root);
    let rank = platform.rank_item(&prev).expect("rank");
    assert!(
        rank.rank < 40.0,
        "laundered fabrication still ranks low: {}",
        rank.rank
    );
    // …and the origin is the fabricator, not the last relayer.
    assert_eq!(
        platform.origin_of(&prev).expect("query"),
        Some(fabricator.address())
    );
}

/// The AI detector generalizes across corpus seeds: train on one synthetic
/// world, evaluate on perturbations generated with a different seed.
#[test]
fn detector_generalizes_across_seeds() {
    let train = generate_news_corpus(&NewsCorpusConfig {
        seed: 1,
        ..NewsCorpusConfig::default()
    });
    let test = generate_news_corpus(&NewsCorpusConfig {
        seed: 999,
        n_factual: 150,
        n_fake: 150,
        ..NewsCorpusConfig::default()
    });
    let det = tn_aidetect::ensemble::EnsembleDetector::train(
        &train,
        tn_aidetect::ensemble::EnsembleWeights::default(),
    );
    let preds: Vec<(bool, f64)> = test
        .iter()
        .map(|d| (d.fake, det.prob_fake(&d.text)))
        .collect();
    let m = tn_aidetect::metrics::evaluate(&preds, 0.5);
    assert!(m.accuracy > 0.8, "cross-seed accuracy {}", m.accuracy);
    assert!(m.auc > 0.85, "cross-seed auc {}", m.auc);
}

/// Deep propagation with mixed ops keeps trace scores monotone: every
/// additional distortion can only lower (never raise) the provenance
/// score along a chain.
#[test]
fn trace_score_never_recovers_after_distortion() {
    use tn_supplychain::graph::SupplyChainGraph;

    let fact = "The committee approved the solar subsidy amendment. \
        The vote passed with a clear majority. The minister welcomed the outcome. \
        Industry groups published their reactions. A review is planned next year.";
    let mut g = SupplyChainGraph::new();
    let root = tn_crypto::sha256::sha256(b"mono root");
    g.add_fact_root(root, fact, "energy", 0).unwrap();

    let mut rng = StdRng::seed_from_u64(3);
    let author = Keypair::from_seed(b"mono author").address();
    let mut prev_id = root;
    let mut prev_text = fact.to_string();
    let mut prev_score = 1.0f64;
    for step in 0..8 {
        let op = if step % 3 == 2 {
            PropagationOp::Insert
        } else {
            PropagationOp::Relay
        };
        let text = apply(op, &[&prev_text], step % 2 == 0, &mut rng);
        let id = g
            .insert(
                author,
                &text,
                "energy",
                1,
                vec![(prev_id, op)],
                10 + step as u64,
            )
            .unwrap();
        let score = g.trace_back(&id).unwrap().score;
        assert!(
            score <= prev_score + 1e-9,
            "score rose along the chain at step {step}: {prev_score} → {score}"
        );
        prev_id = id;
        prev_text = text;
        prev_score = score;
    }
    assert!(prev_score < 1.0, "distortions must have reduced the score");
}
