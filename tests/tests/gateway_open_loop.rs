//! Gateway + open-loop harness integration: the E21 determinism and
//! backpressure contracts, end to end.
//!
//! Two promises from `docs/ARCHITECTURE.md` are pinned here:
//!
//! 1. **Batch-size invariance.** Admission decisions are a pure function
//!    of (gateway config, arrival schedule); the ingest batch size only
//!    chunks the mempool hand-off. Replaying the same seed and schedule
//!    at any `ingest_batch` must yield the identical admit/shed verdict
//!    stream and byte-identical replica digests.
//! 2. **Explicit backpressure.** Bounded ingress lanes shed *new* work
//!    at the door with a verdict; work that was admitted is never
//!    silently dropped — every admitted transaction ends committed or
//!    visibly mempool-rejected, and nothing is left stranded.

use tn_core::platform::PlatformConfig;
use tn_gateway::{build_workload, run_open_loop, run_open_loop_on, LoadProfile, OpenLoopConfig};
use tn_node::validator::ValidatorNode;
use tn_trace::{span_id, TraceId, Tracer};

fn small_profile() -> LoadProfile {
    LoadProfile {
        submitters: 2,
        rankers: 5,
        readers: 2,
        seed_articles: 8,
        write_events: 80,
        read_events: 20,
        ..LoadProfile::default()
    }
}

#[test]
fn verdicts_and_digests_invariant_across_ingest_batch_sizes() {
    let base = PlatformConfig::default();
    let workload = build_workload(&base, &small_profile());
    let olc = OpenLoopConfig {
        offered_tps: 3_000.0,
        ..OpenLoopConfig::default()
    };

    let mut reference = None;
    for ingest_batch in [16usize, 128, 1_024] {
        let mut config = base.clone();
        config.gateway.ingest_batch = ingest_batch;
        let run = run_open_loop(&config, &workload, &olc).expect("run");
        assert!(run.report.committed > 0);
        let fingerprint = (run.verdicts, run.node.execution_digest());
        match &reference {
            None => reference = Some(fingerprint),
            Some(expected) => {
                assert_eq!(
                    expected.0, fingerprint.0,
                    "verdict stream changed at ingest_batch={ingest_batch}"
                );
                assert_eq!(
                    expected.1, fingerprint.1,
                    "replica digest changed at ingest_batch={ingest_batch}"
                );
            }
        }
    }
}

#[test]
fn backpressure_sheds_at_the_door_and_never_drops_admitted_work() {
    // Tight bounds + heavy overload: one lane of 24, a watermark of 8
    // (below the lane bound, so draining throttles while the lane still
    // holds work), the whole stream arriving at 50k requests/second.
    let mut config = PlatformConfig::default();
    config.gateway.workers = 1;
    config.gateway.queue_capacity = 24;
    config.gateway.mempool_watermark = 8;
    config.gateway.rate_per_client = 0; // isolate the queue-bound path
    let workload = build_workload(&config, &small_profile());
    let run = run_open_loop(
        &config,
        &workload,
        &OpenLoopConfig {
            offered_tps: 50_000.0,
            ..OpenLoopConfig::default()
        },
    )
    .expect("run");
    let r = &run.report;
    assert!(
        r.shed_queue_full > 0,
        "overload must hit the lane bound: {r:?}"
    );
    assert_eq!(
        r.writes_offered,
        r.admitted + r.shed_rate_limit + r.shed_queue_full,
        "every offered write gets exactly one verdict"
    );
    assert_eq!(
        r.admitted,
        r.committed + r.mempool_rejected,
        "admitted work is never silently dropped"
    );
    assert_eq!(r.stranded, 0, "shutdown leaves no wedged transactions");
    assert!(r.backpressure_ticks > 0, "watermark must gate draining");
}

#[test]
fn session_abort_keeps_nonce_chains_clean_under_shedding() {
    // Per-client rate limiting tight enough to shed mid-session: the
    // harness must abort those clients' later writes instead of letting
    // nonce holes wedge the mempool.
    let mut config = PlatformConfig::default();
    config.gateway.rate_per_client = 20;
    config.gateway.burst_per_client = 3;
    let workload = build_workload(&config, &small_profile());
    let run = run_open_loop(
        &config,
        &workload,
        &OpenLoopConfig {
            offered_tps: 10_000.0,
            ..OpenLoopConfig::default()
        },
    )
    .expect("run");
    let r = &run.report;
    assert!(r.shed_rate_limit > 0, "the bucket must shed: {r:?}");
    assert!(r.aborted > 0, "sheds mid-session must abort the session");
    assert_eq!(r.stranded, 0, "no nonce holes survive in the mempool");
    assert_eq!(r.admitted, r.committed + r.mempool_rejected);
}

#[test]
fn gateway_spans_link_admission_through_ingest_to_commit() {
    let config = PlatformConfig::default();
    let workload = build_workload(&config, &small_profile());
    let tracer = Tracer::new(1);
    let mut node = ValidatorNode::new(0, &config);
    node.set_trace(tracer.sink(0));
    let telemetry = node.telemetry_sink();
    let run = run_open_loop_on(
        node,
        &config.gateway,
        telemetry,
        tracer.sink(0),
        &workload,
        &OpenLoopConfig {
            offered_tps: 2_000.0,
            ..OpenLoopConfig::default()
        },
    )
    .expect("run");
    assert!(run.report.committed > 0);

    let trace = tracer.collect();
    let committed_tx = run.node.pipeline().store().head().transactions[0].id();
    let tx_trace = TraceId::from_seed(committed_tx.as_bytes());
    let of = |name: &str| {
        trace
            .spans
            .iter()
            .find(|s| s.trace == tx_trace && s.name == name)
            .unwrap_or_else(|| panic!("missing {name} span for committed tx"))
    };
    let admission = of("gateway.admission");
    assert_eq!(admission.parent, 0, "front-door span is the trace root");
    let ingest = of("gateway.ingest");
    assert_eq!(
        ingest.parent,
        span_id(tx_trace, "gateway.admission"),
        "ingest parents under the admission span by recomputed id"
    );
    let commit = of("tx.commit");
    assert_eq!(commit.trace, tx_trace, "commit joins the same causal trace");
}

#[test]
fn gateway_counters_land_in_the_node_registry() {
    let config = PlatformConfig::default();
    let workload = build_workload(&config, &small_profile());
    let run = run_open_loop(
        &config,
        &workload,
        &OpenLoopConfig {
            offered_tps: 1_000.0,
            ..OpenLoopConfig::default()
        },
    )
    .expect("run");
    let snapshot = run.node.metrics_snapshot();
    assert_eq!(
        snapshot.counter("gateway.offered"),
        Some(run.report.writes_offered),
        "gateway.* metrics share the node's registry"
    );
    assert_eq!(
        snapshot.counter("gateway.admitted"),
        Some(run.report.admitted)
    );
    assert!(
        snapshot.counter("gateway.ingest.batches").unwrap_or(0) > 0,
        "drain ticks count ingest batches"
    );
    assert!(
        snapshot.histogram("gateway.ingest.batch_size").is_some(),
        "batch sizes are observed as a histogram"
    );
}
